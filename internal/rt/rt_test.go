package rt_test

import (
	"errors"
	"strings"
	"testing"

	"github.com/gunfu-nfv/gunfu/internal/mem"
	"github.com/gunfu-nfv/gunfu/internal/model"
	"github.com/gunfu-nfv/gunfu/internal/nf/nat"
	"github.com/gunfu-nfv/gunfu/internal/rt"
	"github.com/gunfu-nfv/gunfu/internal/sim"
	"github.com/gunfu-nfv/gunfu/internal/traffic"
)

// buildNAT returns a pre-populated NAT program and matching generator.
func buildNAT(t testing.TB, flows int) (*model.Program, *traffic.FlowGen) {
	t.Helper()
	as := mem.NewAddressSpace()
	n, err := nat.New(as, nat.Config{MaxFlows: flows})
	if err != nil {
		t.Fatal(err)
	}
	g, err := traffic.NewFlowGen(traffic.FlowGenConfig{Flows: flows, PacketBytes: 64, Order: traffic.OrderUniform, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < flows; i++ {
		if err := n.AddFlow(g.FlowTuple(i), int32(i)); err != nil {
			t.Fatal(err)
		}
	}
	prog, err := n.Program()
	if err != nil {
		t.Fatal(err)
	}
	return prog, g
}

func newWorker(t testing.TB, prog *model.Program, cfg rt.Config) *rt.Worker {
	t.Helper()
	core, err := sim.NewCore(sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	w, err := rt.NewWorker(core, mem.NewAddressSpace(), prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestConfigValidation enumerates every invalid rt.Config error path
// with a substring the rejection must carry, so the guards (including
// the ring-wrap bound) cannot silently rot.
func TestConfigValidation(t *testing.T) {
	prog, _ := buildNAT(t, 16)
	core, err := sim.NewCore(sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name string
		cfg  rt.Config
		want string
	}{
		{"zero tasks", rt.Config{Tasks: 0, Batch: 32, RingSlots: 64, SlotBytes: 2048}, "Tasks must be positive"},
		{"negative tasks", rt.Config{Tasks: -1, Batch: 32, RingSlots: 64, SlotBytes: 2048}, "Tasks must be positive"},
		{"zero batch", rt.Config{Tasks: 4, Batch: 0, RingSlots: 64, SlotBytes: 2048}, "Batch must be positive"},
		{"negative batch", rt.Config{Tasks: 4, Batch: -8, RingSlots: 64, SlotBytes: 2048}, "Batch must be positive"},
		{"zero ring slots", rt.Config{Tasks: 4, Batch: 32, RingSlots: 0, SlotBytes: 2048}, "ring geometry"},
		{"negative ring slots", rt.Config{Tasks: 4, Batch: 32, RingSlots: -1, SlotBytes: 2048}, "ring geometry"},
		{"zero slot bytes", rt.Config{Tasks: 4, Batch: 32, RingSlots: 64, SlotBytes: 0}, "ring geometry"},
		{"ring wrap guard", rt.Config{Tasks: 16, Batch: 32, RingSlots: 47, SlotBytes: 2048}, "RingSlots"},
		{"unknown scheduler", rt.Config{Tasks: 4, Batch: 32, RingSlots: 64, SlotBytes: 2048, Scheduler: "fifo"}, "unknown Scheduler"},
		{"wakeup without prefetch", rt.Config{Tasks: 4, Batch: 32, RingSlots: 64, SlotBytes: 2048, ResidentCheck: true, Scheduler: rt.SchedulerWakeup}, "requires Prefetch"},
		{"wakeup without resident check", rt.Config{Tasks: 4, Batch: 32, RingSlots: 64, SlotBytes: 2048, Prefetch: true, Scheduler: rt.SchedulerWakeup}, "requires Prefetch"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := rt.NewWorker(core, mem.NewAddressSpace(), prog, tt.cfg)
			if err == nil {
				t.Fatalf("config accepted: %+v", tt.cfg)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("error %q does not contain %q", err, tt.want)
			}
		})
	}
	ok := rt.Config{Tasks: 4, Batch: 32, RingSlots: 64, SlotBytes: 2048}
	if _, err := rt.NewWorker(core, mem.NewAddressSpace(), prog, ok); err != nil {
		t.Fatalf("minimal valid config rejected: %v", err)
	}
	wake := rt.Config{Tasks: 4, Batch: 32, RingSlots: 64, SlotBytes: 2048,
		Prefetch: true, ResidentCheck: true, Scheduler: rt.SchedulerWakeup}
	if _, err := rt.NewWorker(core, mem.NewAddressSpace(), prog, wake); err != nil {
		t.Fatalf("valid wakeup config rejected: %v", err)
	}
	if got := rt.DefaultConfig().Scheduler; got != rt.SchedulerRR {
		t.Fatalf("DefaultConfig().Scheduler = %q, want %q", got, rt.SchedulerRR)
	}
}

func TestRunProcessesExactly(t *testing.T) {
	prog, g := buildNAT(t, 64)
	w := newWorker(t, prog, rt.DefaultConfig())
	res, err := w.Run(g, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Packets != 1000 {
		t.Fatalf("Packets = %d, want 1000", res.Packets)
	}
	if res.Bits != 1000*64*8 {
		t.Fatalf("Bits = %v", res.Bits)
	}
	if res.Cycles == 0 || res.FreqHz == 0 {
		t.Fatalf("window empty: %+v", res)
	}
}

func TestRunExhaustedSource(t *testing.T) {
	prog, g := buildNAT(t, 64)
	w := newWorker(t, prog, rt.DefaultConfig())
	res, err := w.Run(traffic.NewLimited(g, 100), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Packets != 100 {
		t.Fatalf("Packets = %d, want 100", res.Packets)
	}
	// A second Run on the drained source does nothing.
	res, err = w.Run(traffic.NewLimited(g, 0), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Packets != 0 {
		t.Fatalf("drained source produced %d packets", res.Packets)
	}
}

func TestRunWindowsAreDeltas(t *testing.T) {
	prog, g := buildNAT(t, 64)
	w := newWorker(t, prog, rt.DefaultConfig())
	r1, err := w.Run(g, 500)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := w.Run(g, 500)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Counters.Cycles >= r1.Counters.Cycles+r2.Cycles {
		t.Fatal("second window includes first window's counters")
	}
	// Warm run should be no slower than cold (same packet count).
	if r2.Cycles > r1.Cycles*3/2 {
		t.Fatalf("warm window much slower: %d vs %d", r2.Cycles, r1.Cycles)
	}
}

func TestResultMath(t *testing.T) {
	r := rt.Result{Packets: 1000, Bits: 512000, Cycles: 1000000, FreqHz: 1e9}
	if got := r.Gbps(); got < 0.5119 || got > 0.5121 {
		t.Fatalf("Gbps = %v", got)
	}
	if got := r.Mpps(); got < 0.99 || got > 1.01 {
		t.Fatalf("Mpps = %v", got)
	}
	if got := r.CyclesPerPacket(); got != 1000 {
		t.Fatalf("CyclesPerPacket = %v", got)
	}
	r.Counters.L1Misses = 2000
	l1, _, _ := r.MissesPerPacket()
	if l1 != 2 {
		t.Fatalf("l1 misses per packet = %v", l1)
	}
	var zero rt.Result
	if zero.Gbps() != 0 || zero.Mpps() != 0 || zero.CyclesPerPacket() != 0 {
		t.Fatal("zero result must report zeros")
	}
	a, b, c := zero.MissesPerPacket()
	if a != 0 || b != 0 || c != 0 {
		t.Fatal("zero result misses per packet must be zero")
	}
}

func TestPrefetchingHelps(t *testing.T) {
	const flows, packets = 32768, 20000

	run := func(prefetch bool) rt.Result {
		prog, g := buildNAT(t, flows)
		cfg := rt.DefaultConfig()
		cfg.Prefetch = prefetch
		w := newWorker(t, prog, cfg)
		if _, err := w.Run(g, 5000); err != nil { // warm
			t.Fatal(err)
		}
		res, err := w.Run(g, packets)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	with := run(true)
	without := run(false)
	if with.Cycles >= without.Cycles {
		t.Fatalf("prefetching did not help: with=%d without=%d cycles", with.Cycles, without.Cycles)
	}
	if with.Counters.PrefetchIssued == 0 {
		t.Fatal("no prefetches issued with prefetching on")
	}
	if without.Counters.PrefetchIssued != 0 {
		t.Fatal("prefetches issued with prefetching off")
	}
}

// TestInterleavingShape asserts the paper's Figure 11 result: one task
// is slower than many, throughput peaks in the middle of the sweep, and
// heavy oversubscription degrades from cache contention.
func TestInterleavingShape(t *testing.T) {
	const flows, packets = 32768, 30000
	gbps := func(tasks int) float64 {
		prog, g := buildNAT(t, flows)
		cfg := rt.DefaultConfig()
		cfg.Tasks = tasks
		w := newWorker(t, prog, cfg)
		if _, err := w.Run(g, 5000); err != nil {
			t.Fatal(err)
		}
		res, err := w.Run(g, packets)
		if err != nil {
			t.Fatal(err)
		}
		return res.Gbps()
	}
	one, sixteen, sixtyFour := gbps(1), gbps(16), gbps(64)
	if sixteen < one*1.5 {
		t.Fatalf("16 tasks (%.2f Gbps) not clearly faster than 1 (%.2f)", sixteen, one)
	}
	if sixtyFour >= sixteen {
		t.Fatalf("64 tasks (%.2f Gbps) did not degrade from 16 (%.2f)", sixtyFour, sixteen)
	}
}

func TestEngineParallelCores(t *testing.T) {
	setups := make([]rt.CoreSetup, 4)
	for i := range setups {
		setups[i] = rt.CoreSetup{
			NewWorker: func(core *sim.Core) (*rt.Worker, rt.Source, error) {
				as := mem.NewAddressSpace()
				n, err := nat.New(as, nat.Config{MaxFlows: 256})
				if err != nil {
					return nil, nil, err
				}
				g, err := traffic.NewFlowGen(traffic.FlowGenConfig{Flows: 256, PacketBytes: 64, Seed: 3})
				if err != nil {
					return nil, nil, err
				}
				for f := 0; f < 256; f++ {
					if err := n.AddFlow(g.FlowTuple(f), int32(f)); err != nil {
						return nil, nil, err
					}
				}
				prog, err := n.Program()
				if err != nil {
					return nil, nil, err
				}
				w, err := rt.NewWorker(core, as, prog, rt.DefaultConfig())
				return w, g, err
			},
		}
	}
	eng, err := rt.NewEngine(sim.DefaultConfig(), setups)
	if err != nil {
		t.Fatal(err)
	}
	results, err := eng.Run(2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("results = %d cores", len(results))
	}
	agg := rt.Aggregate(results)
	if agg.Packets != 8000 {
		t.Fatalf("aggregate packets = %d, want 8000", agg.Packets)
	}
	// Four identical cores must scale ~linearly vs one.
	if agg.Gbps() < results[0].Gbps()*3 {
		t.Fatalf("4-core aggregate %.2f Gbps < 3x single core %.2f", agg.Gbps(), results[0].Gbps())
	}
}

func TestEngineValidation(t *testing.T) {
	if _, err := rt.NewEngine(sim.DefaultConfig(), nil); err == nil {
		t.Fatal("empty engine accepted")
	}
}

func TestEngineWorkerError(t *testing.T) {
	eng, err := rt.NewEngine(sim.DefaultConfig(), []rt.CoreSetup{{
		NewWorker: func(core *sim.Core) (*rt.Worker, rt.Source, error) {
			return nil, nil, errFake
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	_, err = eng.Run(10)
	if err == nil {
		t.Fatal("worker construction error not surfaced")
	}
	if !errors.Is(err, errFake) {
		t.Fatalf("error %q lost the cause", err)
	}
	if !strings.Contains(err.Error(), "core 0") {
		t.Fatalf("error %q does not name the failing core", err)
	}
}

// TestEngineJoinsAllCoreErrors pins the errors.Join contract: when
// several cores fail, every failure is reported with its core index —
// none is masked by the first.
func TestEngineJoinsAllCoreErrors(t *testing.T) {
	okSetup := natSetup(64, 5)
	fail := func(e error) rt.CoreSetup {
		return rt.CoreSetup{NewWorker: func(core *sim.Core) (*rt.Worker, rt.Source, error) {
			return nil, nil, e
		}}
	}
	eng, err := rt.NewEngine(sim.DefaultConfig(), []rt.CoreSetup{
		fail(errFake), okSetup, fail(errFake2),
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = eng.Run(10)
	if err == nil {
		t.Fatal("multi-core failure not surfaced")
	}
	if !errors.Is(err, errFake) || !errors.Is(err, errFake2) {
		t.Fatalf("joined error %q lost a cause", err)
	}
	for _, want := range []string{"core 0", "core 2"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("joined error %q does not name %q", err, want)
		}
	}
	if strings.Contains(err.Error(), "core 1") {
		t.Fatalf("joined error %q blames the healthy core", err)
	}
}

// TestEngineReusesPooledCores pins the engine's core pool: a second Run
// must recycle the first Run's generation-reset cores instead of
// rebuilding the megabyte-scale cache arrays, and the recycled cores
// must produce identical simulated results.
func TestEngineReusesPooledCores(t *testing.T) {
	setups := []rt.CoreSetup{natSetup(256, 7), natSetup(256, 7)}
	eng, err := rt.NewEngine(sim.DefaultConfig(), setups)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := eng.Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := eng.Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	news, reuses := eng.PoolStats()
	// Four Gets total; at most one fresh build per concurrent goroutine
	// (a goroutine that finishes before its sibling starts legitimately
	// hands its reset core straight over, even within one Run).
	if news+reuses != 4 {
		t.Fatalf("pool served %d+%d gets, want 4", news, reuses)
	}
	if news > 2 {
		t.Fatalf("built %d cores for a 2-core engine", news)
	}
	if reuses < 2 {
		t.Fatalf("recycled only %d cores across two runs", reuses)
	}
	// Same program, same source seed, reset core: the reset-vs-fresh
	// guarantee means the second run replays the first bit-identically.
	for i := range r1 {
		if r1[i].Cycles != r2[i].Cycles || r1[i].Counters != r2[i].Counters {
			t.Fatalf("core %d: pooled rerun diverged: %+v vs %+v", i, r1[i], r2[i])
		}
	}
}

// natSetup builds an engine CoreSetup running a self-contained NAT over
// `flows` flows with the given traffic seed.
func natSetup(flows int, seed int64) rt.CoreSetup {
	return natSetupSched(flows, seed, rt.SchedulerRR)
}

// natSetupSched is natSetup with the interleave scheduler selectable,
// for the rr/wakeup A/B engine benchmarks and tests.
func natSetupSched(flows int, seed int64, sched string) rt.CoreSetup {
	return rt.CoreSetup{
		NewWorker: func(core *sim.Core) (*rt.Worker, rt.Source, error) {
			as := mem.NewAddressSpace()
			n, err := nat.New(as, nat.Config{MaxFlows: flows})
			if err != nil {
				return nil, nil, err
			}
			g, err := traffic.NewFlowGen(traffic.FlowGenConfig{Flows: flows, PacketBytes: 64, Seed: seed})
			if err != nil {
				return nil, nil, err
			}
			for f := 0; f < flows; f++ {
				if err := n.AddFlow(g.FlowTuple(f), int32(f)); err != nil {
					return nil, nil, err
				}
			}
			prog, err := n.Program()
			if err != nil {
				return nil, nil, err
			}
			cfg := rt.DefaultConfig()
			cfg.Scheduler = sched
			w, err := rt.NewWorker(core, as, prog, cfg)
			return w, g, err
		},
	}
}

var (
	errFake  = &fakeError{}
	errFake2 = &fakeError2{}
)

type fakeError struct{}

func (*fakeError) Error() string { return "fake" }

type fakeError2 struct{}

func (*fakeError2) Error() string { return "fake2" }

func TestAggregateEmpty(t *testing.T) {
	agg := rt.Aggregate(nil)
	if agg.Packets != 0 || agg.Gbps() != 0 {
		t.Fatalf("empty aggregate = %+v", agg)
	}
}

func TestRingGuardRejectsWrappableSlots(t *testing.T) {
	prog, _ := buildNAT(t, 16)
	core, err := sim.NewCore(sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// One slot short of Tasks+Batch: a wrapped ring slot could be
	// overwritten while an in-flight task still points at it.
	bad := rt.Config{Tasks: 16, Batch: 32, RingSlots: 47, SlotBytes: 2048}
	if _, err := rt.NewWorker(core, mem.NewAddressSpace(), prog, bad); err == nil {
		t.Fatalf("RingSlots %d < Tasks+Batch accepted", bad.RingSlots)
	} else if !strings.Contains(err.Error(), "RingSlots") {
		t.Fatalf("ring guard error does not name RingSlots: %v", err)
	}
	// The boundary is safe: exactly Tasks+Batch slots must be accepted.
	ok := rt.Config{Tasks: 16, Batch: 32, RingSlots: 48, SlotBytes: 2048}
	if _, err := rt.NewWorker(core, mem.NewAddressSpace(), prog, ok); err != nil {
		t.Fatalf("boundary config rejected: %v", err)
	}
}
