package rt

import (
	"fmt"
	"sync"

	"github.com/gunfu-nfv/gunfu/internal/sim"
)

// CoreSetup is everything one engine core needs: a compiled program
// over per-core state (pools, match structures) and a packet source
// carrying that core's share of the flows. Building per-core state is
// the caller's job because it is NF-specific; the share-nothing split
// mirrors the paper's RSS flow steering.
type CoreSetup struct {
	// NewWorker constructs the core's worker (program, pools and source
	// are captured by the closure). It runs on the engine goroutine
	// assigned to this core.
	NewWorker func(core *sim.Core) (*Worker, Source, error)
}

// Engine runs one worker per simulated core in parallel host
// goroutines. Cores share nothing — each has its own cache hierarchy,
// pools and match structures — so scaling is linear by construction,
// matching the paper's multi-core results (Figs 14, 15).
type Engine struct {
	simCfg sim.Config
	setups []CoreSetup
}

// NewEngine builds an engine over the given per-core setups.
func NewEngine(simCfg sim.Config, setups []CoreSetup) (*Engine, error) {
	if len(setups) == 0 {
		return nil, fmt.Errorf("rt: engine needs at least one core")
	}
	return &Engine{simCfg: simCfg, setups: setups}, nil
}

// Run executes all cores, each processing up to perCorePackets, and
// returns per-core results in core order.
func (e *Engine) Run(perCorePackets uint64) ([]Result, error) {
	results := make([]Result, len(e.setups))
	errs := make([]error, len(e.setups))
	var wg sync.WaitGroup
	for i := range e.setups {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			core, err := sim.NewCore(e.simCfg)
			if err != nil {
				errs[i] = err
				return
			}
			w, src, err := e.setups[i].NewWorker(core)
			if err != nil {
				errs[i] = err
				return
			}
			results[i], errs[i] = w.Run(src, perCorePackets)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("rt: core %d: %w", i, err)
		}
	}
	return results, nil
}

// Aggregate combines per-core results into a fleet view. Since cores
// run concurrently, the aggregate window is the slowest core's cycle
// span and throughput is the sum of per-core rates.
func Aggregate(results []Result) Result {
	var agg Result
	for _, r := range results {
		agg.Packets += r.Packets
		agg.AccessCycles += r.AccessCycles
		agg.Counters = addCounters(agg.Counters, r.Counters)
		if r.Cycles > agg.Cycles {
			agg.Cycles = r.Cycles
		}
		agg.FreqHz = r.FreqHz
	}
	// Sum of per-core throughputs expressed through the common window:
	// scale bits so Bits/window == Σ bits_i/window_i.
	if agg.Cycles > 0 {
		for _, r := range results {
			if r.Cycles > 0 {
				agg.Bits += r.Bits * float64(agg.Cycles) / float64(r.Cycles)
			}
		}
	}
	return agg
}

func addCounters(a, b sim.Counters) sim.Counters {
	return sim.Counters{
		Cycles:            a.Cycles + b.Cycles,
		Instructions:      a.Instructions + b.Instructions,
		Reads:             a.Reads + b.Reads,
		Writes:            a.Writes + b.Writes,
		L1Hits:            a.L1Hits + b.L1Hits,
		L1Misses:          a.L1Misses + b.L1Misses,
		L2Hits:            a.L2Hits + b.L2Hits,
		L2Misses:          a.L2Misses + b.L2Misses,
		LLCHits:           a.LLCHits + b.LLCHits,
		LLCMisses:         a.LLCMisses + b.LLCMisses,
		PrefetchIssued:    a.PrefetchIssued + b.PrefetchIssued,
		PrefetchDropped:   a.PrefetchDropped + b.PrefetchDropped,
		PrefetchRedundant: a.PrefetchRedundant + b.PrefetchRedundant,
		PrefetchUseful:    a.PrefetchUseful + b.PrefetchUseful,
		PrefetchLate:      a.PrefetchLate + b.PrefetchLate,
		StallCycles:       a.StallCycles + b.StallCycles,
		TaskSwitches:      a.TaskSwitches + b.TaskSwitches,
	}
}
