package rt

import (
	"errors"
	"fmt"
	"sync"

	"github.com/gunfu-nfv/gunfu/internal/sim"
)

// CoreSetup is everything one engine core needs: a compiled program
// over per-core state (pools, match structures) and a packet source
// carrying that core's share of the flows. Building per-core state is
// the caller's job because it is NF-specific; the share-nothing split
// mirrors the paper's RSS flow steering.
type CoreSetup struct {
	// NewWorker constructs the core's worker (program, pools and source
	// are captured by the closure). It runs on the engine goroutine
	// assigned to this core.
	NewWorker func(core *sim.Core) (*Worker, Source, error)
}

// Engine runs one worker per simulated core in parallel host
// goroutines. Cores share nothing — each has its own cache hierarchy,
// pools and match structures — so scaling is linear by construction,
// matching the paper's multi-core results (Figs 14, 15).
//
// Simulated cores are drawn from a sim.CorePool owned by the engine:
// repeated Run calls recycle generation-reset cores instead of
// allocating and faulting the megabyte-scale cache arrays per call
// (the reset-vs-fresh differential test guarantees a pooled core is
// observationally indistinguishable from a new one).
type Engine struct {
	simCfg sim.Config
	setups []CoreSetup
	pool   *sim.CorePool
}

// NewEngine builds an engine over the given per-core setups.
func NewEngine(simCfg sim.Config, setups []CoreSetup) (*Engine, error) {
	if len(setups) == 0 {
		return nil, fmt.Errorf("rt: engine needs at least one core")
	}
	return &Engine{simCfg: simCfg, setups: setups, pool: sim.NewCorePool(simCfg)}, nil
}

// Run executes all cores, each processing up to perCorePackets, and
// returns per-core results in core order. Every per-core failure is
// reported (joined with errors.Join, each wrapped with its core index)
// — a multi-core failure is never masked by the first core's error.
func (e *Engine) Run(perCorePackets uint64) ([]Result, error) {
	results := make([]Result, len(e.setups))
	errs := make([]error, len(e.setups))
	var wg sync.WaitGroup
	for i := range e.setups {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			core, err := e.pool.Get()
			if err != nil {
				errs[i] = err
				return
			}
			defer e.pool.Put(core)
			w, src, err := e.setups[i].NewWorker(core)
			if err != nil {
				errs[i] = err
				return
			}
			results[i], errs[i] = w.Run(src, perCorePackets)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			errs[i] = fmt.Errorf("rt: core %d: %w", i, err)
		}
	}
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return results, nil
}

// PoolStats reports how many simulated cores the engine's pool built
// versus recycled across Run calls; tests assert the pool pools.
func (e *Engine) PoolStats() (news, reuses int64) {
	return e.pool.Stats()
}

// Aggregate combines per-core results into a fleet view. Since cores
// run concurrently, the aggregate window is the slowest core's cycle
// span and throughput is the sum of per-core rates. FreqHz is taken
// from the core that defines the window (the one with the most
// cycles), so throughput conversion uses the clock the window was
// measured in; heterogeneous-clock fleets should use AggregateStrict
// to surface the mismatch instead.
func Aggregate(results []Result) Result {
	var agg Result
	for _, r := range results {
		agg.Packets += r.Packets
		agg.AccessCycles += r.AccessCycles
		agg.Parks += r.Parks
		agg.Wakes += r.Wakes
		agg.WakeStalls += r.WakeStalls
		agg.Counters = agg.Counters.Add(r.Counters)
		if r.Cycles >= agg.Cycles {
			agg.Cycles = r.Cycles
			agg.FreqHz = r.FreqHz
		}
	}
	// Sum of per-core throughputs expressed through the common window:
	// scale bits so Bits/window == Σ bits_i/window_i.
	if agg.Cycles > 0 {
		for _, r := range results {
			if r.Cycles > 0 {
				agg.Bits += r.Bits * float64(agg.Cycles) / float64(r.Cycles)
			}
		}
	}
	return agg
}

// AggregateStrict is Aggregate with a clock-consistency check: all
// cores must report the same FreqHz, since summing throughput across
// cores with different clocks through a single cycle window would be
// silently wrong. The multi-core experiments (Figs 14, 15) use this
// form.
func AggregateStrict(results []Result) (Result, error) {
	for i, r := range results {
		if r.FreqHz != results[0].FreqHz {
			return Result{}, fmt.Errorf("rt: aggregate: core %d clock %.0f Hz differs from core 0 clock %.0f Hz",
				i, r.FreqHz, results[0].FreqHz)
		}
	}
	return Aggregate(results), nil
}
