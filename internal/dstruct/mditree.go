package dstruct

import (
	"fmt"
	"sort"

	"github.com/gunfu-nfv/gunfu/internal/mem"
	"github.com/gunfu-nfv/gunfu/internal/model"
	"github.com/gunfu-nfv/gunfu/internal/sim"
)

// PortRange is one PDR's SDF filter reduced to its discriminating
// dimension: a source-port interval mapping to a PDR pool index.
type PortRange struct {
	// Lo and Hi bound the matched source ports, inclusive.
	Lo, Hi uint16
	// PDR is the sub-flow pool index of the matched rule.
	PDR int32
}

// SessionRules is the rule set of one PFCP session: the UE IP that
// selects the session (first dimension) and the PDR filters that select
// the rule within it (second dimension).
type SessionRules struct {
	// UEIP is the session's UE address, matched against the packet's
	// destination IP on the downlink.
	UEIP uint32
	// Session is the per-flow pool index of the session state.
	Session int32
	// PDRs are the session's packet detection rules; their port ranges
	// must be disjoint.
	PDRs []PortRange
}

// StepResult is the outcome of one MDI tree descent step.
type StepResult int

// The descent outcomes.
const (
	// StepContinue means the walk continues at the cursor's new address.
	StepContinue StepResult = iota + 1
	// StepFound means the PDR was located: cur.Idx is the PDR index and
	// cur.Aux[3] the session index.
	StepFound
	// StepMiss means no rule matches the packet.
	StepMiss
)

// node is one tree node in slab form. Both dimensions share the search
// logic: descend left when x < a, right when x > b, match when a≤x≤b.
// For the first (UE IP) dimension a == b == UEIP and sub points at the
// session's second-level subtree; for the second (port) dimension
// [a,b] is the PDR's port range and val its PDR index.
type node struct {
	a, b        uint32
	left, right int32
	val         int32
	sub         int32
}

// MDITree is the multidimensional interval tree mapping a packet's
// (dstIP, srcPort) to its (session, PDR) pair. Each node occupies one
// simulated cache line, so a lookup's cost is its depth in lines —
// the pointer-chasing workload of the paper's matching actions.
type MDITree struct {
	region mem.Region
	nodes  []node
	root   int32
	// sessions counts level-1 entries for diagnostics.
	sessions int
}

// NewMDITree builds the tree for the given sessions, reserving one
// simulated line per node from as.
func NewMDITree(as *mem.AddressSpace, name string, sessions []SessionRules) (*MDITree, error) {
	if len(sessions) == 0 {
		return nil, fmt.Errorf("dstruct: mditree %s: no sessions", name)
	}
	t := &MDITree{root: -1, sessions: len(sessions)}

	// Estimate node count: one per session plus one per PDR.
	total := len(sessions)
	for _, s := range sessions {
		total += len(s.PDRs)
	}
	t.nodes = make([]node, 0, total)

	// Level-2 subtrees first so level-1 nodes can point at them.
	sorted := append([]SessionRules(nil), sessions...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].UEIP < sorted[j].UEIP })
	for i := 1; i < len(sorted); i++ {
		if sorted[i].UEIP == sorted[i-1].UEIP {
			return nil, fmt.Errorf("dstruct: mditree %s: duplicate UE IP %#x", name, sorted[i].UEIP)
		}
	}

	subRoots := make([]int32, len(sorted))
	for i, s := range sorted {
		ranges := append([]PortRange(nil), s.PDRs...)
		sort.Slice(ranges, func(a, b int) bool { return ranges[a].Lo < ranges[b].Lo })
		for j := 0; j < len(ranges); j++ {
			if ranges[j].Lo > ranges[j].Hi {
				return nil, fmt.Errorf("dstruct: mditree %s: inverted range [%d,%d]", name, ranges[j].Lo, ranges[j].Hi)
			}
			if j > 0 && ranges[j].Lo <= ranges[j-1].Hi {
				return nil, fmt.Errorf("dstruct: mditree %s: overlapping PDR ranges for UE %#x", name, s.UEIP)
			}
		}
		subRoots[i] = t.buildRanges(ranges)
	}
	t.root = t.buildSessions(sorted, subRoots, 0, len(sorted))

	base := as.Reserve(uint64(len(t.nodes))*sim.LineBytes, sim.LineBytes)
	t.region = mem.Region{Name: name, Base: base, Size: uint64(len(t.nodes)) * sim.LineBytes}
	return t, nil
}

// buildRanges builds a balanced BST over disjoint sorted port ranges.
func (t *MDITree) buildRanges(ranges []PortRange) int32 {
	if len(ranges) == 0 {
		return -1
	}
	mid := len(ranges) / 2
	r := ranges[mid]
	idx := int32(len(t.nodes))
	t.nodes = append(t.nodes, node{a: uint32(r.Lo), b: uint32(r.Hi), val: r.PDR, left: -1, right: -1, sub: -1})
	t.nodes[idx].left = t.buildRanges(ranges[:mid])
	t.nodes[idx].right = t.buildRanges(ranges[mid+1:])
	return idx
}

// buildSessions builds a balanced BST over sessions sorted by UE IP.
func (t *MDITree) buildSessions(sessions []SessionRules, subRoots []int32, lo, hi int) int32 {
	if lo >= hi {
		return -1
	}
	mid := (lo + hi) / 2
	s := sessions[mid]
	idx := int32(len(t.nodes))
	t.nodes = append(t.nodes, node{a: s.UEIP, b: s.UEIP, val: s.Session, sub: subRoots[mid], left: -1, right: -1})
	t.nodes[idx].left = t.buildSessions(sessions, subRoots, lo, mid)
	t.nodes[idx].right = t.buildSessions(sessions, subRoots, mid+1, hi)
	return idx
}

// NodeAddr returns the simulated address of node i.
func (t *MDITree) NodeAddr(i int32) uint64 {
	return t.region.Base + uint64(i)*sim.LineBytes
}

// Region returns the tree's simulated address region.
func (t *MDITree) Region() mem.Region { return t.region }

// Nodes returns the node count.
func (t *MDITree) Nodes() int { return len(t.nodes) }

// Sessions returns the number of level-1 entries.
func (t *MDITree) Sessions() int { return t.sessions }

// Depth returns the maximum root-to-leaf descent length in nodes (the
// second dimension's subtree counts from its session node), i.e. the
// worst-case number of dependent line accesses per lookup.
func (t *MDITree) Depth() int {
	var path func(i int32) int
	path = func(i int32) int {
		if i < 0 {
			return 0
		}
		n := t.nodes[i]
		best := path(n.left)
		if r := path(n.right); r > best {
			best = r
		}
		if n.sub >= 0 {
			if s := path(n.sub); s > best {
				best = s
			}
		}
		return 1 + best
	}
	return path(t.root)
}

// Begin stages a stepwise lookup for (dstIP, srcPort) at the root.
func (t *MDITree) Begin(cur *model.Cursor, dstIP uint32, srcPort uint16) {
	cur.Reset()
	cur.Stage = 1
	cur.Aux[0] = uint64(dstIP)
	cur.Aux[1] = uint64(srcPort)
	cur.Aux[2] = uint64(t.root)
	cur.Addr = t.NodeAddr(t.root)
}

// WalkStep consumes the node at the cursor (already charged by the
// runtime) and either descends — staging the next node's address for
// prefetching — or terminates with the match result.
func (t *MDITree) WalkStep(cur *model.Cursor) StepResult {
	n := &t.nodes[int32(cur.Aux[2])]
	var x uint32
	if cur.Stage == 1 {
		x = uint32(cur.Aux[0]) // UE IP dimension
	} else {
		x = uint32(cur.Aux[1]) // port dimension
	}
	var next int32
	switch {
	case x < n.a:
		next = n.left
	case x > n.b:
		next = n.right
	default:
		if cur.Stage == 1 {
			// Session found: record it and drop into its subtree.
			cur.Aux[3] = uint64(uint32(n.val))
			if n.sub < 0 {
				cur.Ok = false
				return StepMiss
			}
			cur.Stage = 2
			cur.Aux[2] = uint64(n.sub)
			cur.Addr = t.NodeAddr(n.sub)
			return StepContinue
		}
		cur.Ok = true
		cur.Idx = n.val
		return StepFound
	}
	if next < 0 {
		cur.Ok = false
		return StepMiss
	}
	cur.Aux[2] = uint64(next)
	cur.Addr = t.NodeAddr(next)
	return StepContinue
}

// SessionOf returns the session index recorded by a completed walk.
func SessionOf(cur *model.Cursor) int32 {
	return int32(uint32(cur.Aux[3]))
}

// Lookup is the un-charged control-plane lookup used by tests and the
// RTC reference path.
func (t *MDITree) Lookup(dstIP uint32, srcPort uint16) (session, pdr int32, ok bool) {
	var cur model.Cursor
	t.Begin(&cur, dstIP, srcPort)
	for i := 0; i < len(t.nodes)+2; i++ {
		switch t.WalkStep(&cur) {
		case StepContinue:
		case StepFound:
			return SessionOf(&cur), cur.Idx, true
		case StepMiss:
			return 0, 0, false
		}
	}
	return 0, 0, false
}
