package dstruct

import (
	"testing"
	"testing/quick"

	"github.com/gunfu-nfv/gunfu/internal/mem"
	"github.com/gunfu-nfv/gunfu/internal/model"
	"github.com/gunfu-nfv/gunfu/internal/sim"
)

func newCuckoo(t *testing.T, capacity int) *Cuckoo {
	t.Helper()
	c, err := NewCuckoo(mem.NewAddressSpace(), "t", capacity)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCuckooInsertLookup(t *testing.T) {
	c := newCuckoo(t, 1000)
	for i := 0; i < 1000; i++ {
		if err := c.Insert(uint64(i)*7919+1, int32(i)); err != nil {
			t.Fatalf("Insert #%d: %v", i, err)
		}
	}
	if c.Len() != 1000 {
		t.Fatalf("Len = %d, want 1000", c.Len())
	}
	for i := 0; i < 1000; i++ {
		v, ok := c.Lookup(uint64(i)*7919 + 1)
		if !ok || v != int32(i) {
			t.Fatalf("Lookup(%d) = %d,%v", i, v, ok)
		}
	}
	if _, ok := c.Lookup(999999999); ok {
		t.Fatal("lookup of absent key succeeded")
	}
}

func TestCuckooUpdateInPlace(t *testing.T) {
	c := newCuckoo(t, 10)
	if err := c.Insert(42, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(42, 2); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Fatalf("Len after update = %d, want 1", c.Len())
	}
	if v, ok := c.Lookup(42); !ok || v != 2 {
		t.Fatalf("Lookup = %d,%v, want 2,true", v, ok)
	}
}

func TestCuckooDelete(t *testing.T) {
	c := newCuckoo(t, 10)
	if err := c.Insert(7, 70); err != nil {
		t.Fatal(err)
	}
	if !c.Delete(7) {
		t.Fatal("Delete(7) = false")
	}
	if c.Delete(7) {
		t.Fatal("second Delete(7) = true")
	}
	if _, ok := c.Lookup(7); ok {
		t.Fatal("deleted key still present")
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestCuckooCapacityError(t *testing.T) {
	if _, err := NewCuckoo(mem.NewAddressSpace(), "t", 0); err == nil {
		t.Fatal("zero capacity accepted")
	}
}

func TestCuckooStepwiseLookup(t *testing.T) {
	c := newCuckoo(t, 100)
	for i := 0; i < 100; i++ {
		if err := c.Insert(uint64(i)+1, int32(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		var cur model.Cursor
		c.Begin(uint64(i)+1, &cur)
		if !c.Region().Contains(cur.Addr, sim.LineBytes) {
			t.Fatalf("cursor addr %#x outside table region", cur.Addr)
		}
		steps := 0
		for {
			done := c.CheckStep(&cur)
			steps++
			if done {
				break
			}
			if steps > 2 {
				t.Fatal("cuckoo lookup took more than 2 probes")
			}
		}
		if !cur.Ok || cur.Idx != int32(i) {
			t.Fatalf("stepwise Lookup(%d) = %d,%v", i+1, cur.Idx, cur.Ok)
		}
	}
}

func TestCuckooStepwiseMiss(t *testing.T) {
	c := newCuckoo(t, 10)
	if err := c.Insert(1, 1); err != nil {
		t.Fatal(err)
	}
	var cur model.Cursor
	c.Begin(424242, &cur)
	done := c.CheckStep(&cur)
	if !done {
		done = c.CheckStep(&cur)
	}
	if !done || cur.Ok || cur.Idx != -1 {
		t.Fatalf("miss: done=%v ok=%v idx=%d", done, cur.Ok, cur.Idx)
	}
}

func TestCuckooBucketAddrAligned(t *testing.T) {
	c := newCuckoo(t, 64)
	for b := uint64(0); b < uint64(c.Buckets()); b++ {
		if c.BucketAddr(b)%sim.LineBytes != 0 {
			t.Fatalf("bucket %d addr %#x not line aligned", b, c.BucketAddr(b))
		}
	}
}

// Property: any set of distinct keys round-trips through insert/lookup,
// and the stepwise lookup agrees with the direct one.
func TestCuckooProperty(t *testing.T) {
	prop := func(keys []uint64) bool {
		seen := make(map[uint64]bool, len(keys))
		distinct := keys[:0]
		for _, k := range keys {
			if k == 0 || seen[k] {
				continue
			}
			seen[k] = true
			distinct = append(distinct, k)
			if len(distinct) == 200 {
				break
			}
		}
		c, err := NewCuckoo(mem.NewAddressSpace(), "p", 512)
		if err != nil {
			return false
		}
		for i, k := range distinct {
			if err := c.Insert(k, int32(i)); err != nil {
				return false
			}
		}
		for i, k := range distinct {
			v, ok := c.Lookup(k)
			if !ok || v != int32(i) {
				return false
			}
			var cur model.Cursor
			c.Begin(k, &cur)
			for !c.CheckStep(&cur) {
			}
			if !cur.Ok || cur.Idx != int32(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func sessionsFixture(n, pdrs int) []SessionRules {
	out := make([]SessionRules, 0, n)
	span := 65536 / pdrs
	for i := 0; i < n; i++ {
		s := SessionRules{UEIP: 0x0a000000 + uint32(i), Session: int32(i)}
		for p := 0; p < pdrs; p++ {
			lo := p * span
			hi := lo + span - 1
			if p == pdrs-1 {
				hi = 65535
			}
			s.PDRs = append(s.PDRs, PortRange{Lo: uint16(lo), Hi: uint16(hi), PDR: int32(i*pdrs + p)})
		}
		out = append(out, s)
	}
	return out
}

func TestMDITreeLookup(t *testing.T) {
	sessions := sessionsFixture(100, 4)
	tree, err := NewMDITree(mem.NewAddressSpace(), "t", sessions)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Sessions() != 100 {
		t.Fatalf("Sessions = %d", tree.Sessions())
	}
	if tree.Nodes() != 100+100*4 {
		t.Fatalf("Nodes = %d, want 500", tree.Nodes())
	}
	for i := 0; i < 100; i++ {
		for p := 0; p < 4; p++ {
			port := uint16(p*16384 + 100)
			sess, pdr, ok := tree.Lookup(0x0a000000+uint32(i), port)
			if !ok {
				t.Fatalf("Lookup session %d port %d missed", i, port)
			}
			if sess != int32(i) || pdr != int32(i*4+p) {
				t.Fatalf("Lookup = sess %d pdr %d, want %d/%d", sess, pdr, i, i*4+p)
			}
		}
	}
}

func TestMDITreeMiss(t *testing.T) {
	tree, err := NewMDITree(mem.NewAddressSpace(), "t", sessionsFixture(10, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := tree.Lookup(0x0b000000, 80); ok {
		t.Fatal("unknown UE IP matched")
	}
}

func TestMDITreeMissWithinSession(t *testing.T) {
	sessions := []SessionRules{{
		UEIP:    0x0a000001,
		Session: 0,
		PDRs:    []PortRange{{Lo: 100, Hi: 200, PDR: 0}},
	}}
	tree, err := NewMDITree(mem.NewAddressSpace(), "t", sessions)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := tree.Lookup(0x0a000001, 300); ok {
		t.Fatal("out-of-range port matched")
	}
	if _, _, ok := tree.Lookup(0x0a000001, 50); ok {
		t.Fatal("below-range port matched")
	}
	sess, pdr, ok := tree.Lookup(0x0a000001, 150)
	if !ok || sess != 0 || pdr != 0 {
		t.Fatalf("in-range lookup = %d,%d,%v", sess, pdr, ok)
	}
}

func TestMDITreeSessionWithNoPDRs(t *testing.T) {
	sessions := []SessionRules{{UEIP: 1, Session: 0}}
	tree, err := NewMDITree(mem.NewAddressSpace(), "t", sessions)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := tree.Lookup(1, 80); ok {
		t.Fatal("session with no PDRs matched")
	}
}

func TestMDITreeErrors(t *testing.T) {
	as := mem.NewAddressSpace()
	if _, err := NewMDITree(as, "t", nil); err == nil {
		t.Fatal("empty sessions accepted")
	}
	dup := []SessionRules{{UEIP: 1, Session: 0}, {UEIP: 1, Session: 1}}
	if _, err := NewMDITree(as, "t", dup); err == nil {
		t.Fatal("duplicate UE IP accepted")
	}
	overlap := []SessionRules{{
		UEIP: 1, Session: 0,
		PDRs: []PortRange{{Lo: 0, Hi: 100, PDR: 0}, {Lo: 50, Hi: 150, PDR: 1}},
	}}
	if _, err := NewMDITree(as, "t", overlap); err == nil {
		t.Fatal("overlapping ranges accepted")
	}
	inverted := []SessionRules{{
		UEIP: 1, Session: 0,
		PDRs: []PortRange{{Lo: 100, Hi: 50, PDR: 0}},
	}}
	if _, err := NewMDITree(as, "t", inverted); err == nil {
		t.Fatal("inverted range accepted")
	}
}

func TestMDITreeDepthLogarithmic(t *testing.T) {
	tree, err := NewMDITree(mem.NewAddressSpace(), "t", sessionsFixture(1024, 16))
	if err != nil {
		t.Fatal(err)
	}
	// Balanced: level-1 depth ~ log2(1024)=10, level-2 ~ log2(16)=4.
	if d := tree.Depth(); d > 16 {
		t.Fatalf("Depth = %d, want <= 16 for balanced tree", d)
	}
}

func TestMDITreeStepwiseMatchesLookup(t *testing.T) {
	tree, err := NewMDITree(mem.NewAddressSpace(), "t", sessionsFixture(64, 8))
	if err != nil {
		t.Fatal(err)
	}
	var cur model.Cursor
	tree.Begin(&cur, 0x0a000000+17, 30000)
	steps := 0
	for {
		if !tree.Region().Contains(cur.Addr, sim.LineBytes) {
			t.Fatalf("cursor addr %#x outside tree region", cur.Addr)
		}
		res := tree.WalkStep(&cur)
		steps++
		if res == StepFound {
			break
		}
		if res == StepMiss {
			t.Fatal("stepwise walk missed")
		}
		if steps > tree.Depth()+1 {
			t.Fatalf("walk exceeded depth bound: %d steps", steps)
		}
	}
	wantSess, wantPDR, ok := tree.Lookup(0x0a000000+17, 30000)
	if !ok {
		t.Fatal("reference lookup missed")
	}
	if SessionOf(&cur) != wantSess || cur.Idx != wantPDR {
		t.Fatalf("stepwise = %d/%d, reference = %d/%d", SessionOf(&cur), cur.Idx, wantSess, wantPDR)
	}
}

// Property: stepwise walk and reference lookup agree for arbitrary
// queries, hit or miss.
func TestMDITreeProperty(t *testing.T) {
	tree, err := NewMDITree(mem.NewAddressSpace(), "t", sessionsFixture(128, 4))
	if err != nil {
		t.Fatal(err)
	}
	prop := func(ipOff uint16, port uint16) bool {
		ip := 0x0a000000 + uint32(ipOff)%200 // ~36% misses
		sess, pdr, ok := tree.Lookup(ip, port)

		var cur model.Cursor
		tree.Begin(&cur, ip, port)
		for i := 0; i <= tree.Depth()+1; i++ {
			switch tree.WalkStep(&cur) {
			case StepContinue:
				continue
			case StepFound:
				return ok && SessionOf(&cur) == sess && cur.Idx == pdr
			case StepMiss:
				return !ok
			}
		}
		return false
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestNextPow2(t *testing.T) {
	tests := []struct{ in, want uint64 }{
		{0, 2}, {1, 2}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {1000, 1024},
	}
	for _, tt := range tests {
		if got := nextPow2(tt.in); got != tt.want {
			t.Errorf("nextPow2(%d) = %d, want %d", tt.in, got, tt.want)
		}
	}
}
