// Package dstruct implements the matching structures the paper's NFs
// classify flows with: a 4-way bucketized cuckoo hash table and a
// multidimensional interval (MDI) tree.
//
// Both structures are *stepwise*: lookups are resumable state machines
// driven through a model.Cursor, with each step touching exactly one
// cache line whose address is known before the step runs. That is the
// granular decomposition of Listing 1 in the paper (get_key → hash_1 →
// check_1 → hash_2 → check_2) and it is what lets the interleaved
// runtime prefetch the next bucket or tree node and switch to another
// function stream instead of stalling on the pointer chase.
//
// The structures keep their real contents in flat Go slices (no
// per-node allocations, GC-friendly) and expose one simulated address
// per bucket/node so the cache simulator sees the true footprint.
package dstruct

import (
	"fmt"
	"math/bits"

	"github.com/gunfu-nfv/gunfu/internal/mem"
	"github.com/gunfu-nfv/gunfu/internal/model"
	"github.com/gunfu-nfv/gunfu/internal/sim"
)

// slotsPerBucket is the cuckoo bucket width. Four 14-byte slots fit one
// 64-byte cache line, so probing a bucket costs exactly one line.
const slotsPerBucket = 4

// maxKicks bounds the cuckoo insertion displacement chain.
const maxKicks = 500

// Cuckoo is a 4-way bucketized cuckoo hash table mapping uint64 keys to
// int32 values (pool entry indexes). Each bucket occupies one simulated
// cache line.
type Cuckoo struct {
	region  mem.Region
	mask    uint64
	buckets []bucket
	entries int
}

// bucket is one 4-way bucket, padded to 64 bytes so a probe touches a
// single host cache line — the same unit of locality the simulated
// layout charges for.
type bucket struct {
	keys [slotsPerBucket]uint64
	vals [slotsPerBucket]int32
	used [slotsPerBucket]bool
	_    [12]byte
}

// NewCuckoo builds a table able to hold at least capacity entries at a
// conservative load factor, drawing simulated addresses from as.
func NewCuckoo(as *mem.AddressSpace, name string, capacity int) (*Cuckoo, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("dstruct: cuckoo %s: capacity must be positive", name)
	}
	// Size for a 50% load factor so displacement chains stay short.
	buckets := nextPow2(uint64(capacity) / (slotsPerBucket / 2))
	if buckets < 4 {
		buckets = 4
	}
	base := as.Reserve(buckets*sim.LineBytes, sim.LineBytes)
	return &Cuckoo{
		region:  mem.Region{Name: name, Base: base, Size: buckets * sim.LineBytes},
		mask:    buckets - 1,
		buckets: make([]bucket, buckets),
	}, nil
}

func nextPow2(v uint64) uint64 {
	if v < 2 {
		return 2
	}
	return 1 << uint(64-bits.LeadingZeros64(v-1))
}

// hash1 and hash2 are two independent mixes of the key; bucket indexes
// derive from them so both candidates are computable from the key alone.
func hash1(key uint64) uint64 {
	h := key * 0x9e3779b97f4a7c15
	return h ^ h>>32
}

func hash2(key uint64) uint64 {
	h := (key ^ 0xdeadbeefcafef00d) * 0xc2b2ae3d27d4eb4f
	return h ^ h>>29
}

// BucketAddr returns the simulated address of bucket b.
func (c *Cuckoo) BucketAddr(b uint64) uint64 {
	return c.region.Base + (b&c.mask)*sim.LineBytes
}

// Region returns the table's simulated address region.
func (c *Cuckoo) Region() mem.Region { return c.region }

// Len returns the number of stored entries.
func (c *Cuckoo) Len() int { return c.entries }

// Buckets returns the bucket count.
func (c *Cuckoo) Buckets() int { return int(c.mask + 1) }

// Insert stores key→val, displacing entries as needed. It is a control-
// plane operation (session establishment) and is not charged to the
// cache simulator.
func (c *Cuckoo) Insert(key uint64, val int32) error {
	if c.tryPlace(key, val, hash1(key)&c.mask) || c.tryPlace(key, val, hash2(key)&c.mask) {
		return nil
	}
	// Displacement chain starting from the first candidate.
	curKey, curVal := key, val
	b := hash1(key) & c.mask
	for kick := 0; kick < maxKicks; kick++ {
		// Evict a pseudo-random slot of b (rotate by kick for
		// determinism without a global RNG).
		bkt, slot := &c.buckets[b], kick%slotsPerBucket
		evKey, evVal := bkt.keys[slot], bkt.vals[slot]
		bkt.keys[slot], bkt.vals[slot] = curKey, curVal
		curKey, curVal = evKey, evVal
		// The evicted entry goes to its alternate bucket.
		b1, b2 := hash1(curKey)&c.mask, hash2(curKey)&c.mask
		if b == b1 {
			b = b2
		} else {
			b = b1
		}
		if c.tryPlace(curKey, curVal, b) {
			return nil
		}
	}
	return fmt.Errorf("dstruct: cuckoo %s: insertion failed after %d kicks (load %d/%d)",
		c.region.Name, maxKicks, c.entries, len(c.buckets)*slotsPerBucket)
}

func (c *Cuckoo) tryPlace(key uint64, val int32, b uint64) bool {
	bkt := &c.buckets[b]
	for s := 0; s < slotsPerBucket; s++ {
		if bkt.used[s] && bkt.keys[s] == key {
			bkt.vals[s] = val // update in place
			return true
		}
	}
	for s := 0; s < slotsPerBucket; s++ {
		if !bkt.used[s] {
			bkt.used[s] = true
			bkt.keys[s] = key
			bkt.vals[s] = val
			c.entries++
			return true
		}
	}
	return false
}

// Delete removes key, reporting whether it was present.
func (c *Cuckoo) Delete(key uint64) bool {
	for _, b := range []uint64{hash1(key) & c.mask, hash2(key) & c.mask} {
		bkt := &c.buckets[b]
		for s := 0; s < slotsPerBucket; s++ {
			if bkt.used[s] && bkt.keys[s] == key {
				bkt.used[s] = false
				c.entries--
				return true
			}
		}
	}
	return false
}

// Lookup is the un-charged control-plane lookup (tests, management).
func (c *Cuckoo) Lookup(key uint64) (int32, bool) {
	for _, b := range []uint64{hash1(key) & c.mask, hash2(key) & c.mask} {
		bkt := &c.buckets[b]
		for s := 0; s < slotsPerBucket; s++ {
			if bkt.used[s] && bkt.keys[s] == key {
				return bkt.vals[s], true
			}
		}
	}
	return 0, false
}

// Begin stages a stepwise lookup: it computes the first candidate
// bucket and parks its address in the cursor, so the runtime can
// prefetch it before CheckStep executes. This is the hash_1 state of
// Listing 1 (get_key has already staged the key).
func (c *Cuckoo) Begin(key uint64, cur *model.Cursor) {
	cur.Reset()
	cur.Stage = 1
	cur.Aux[0] = key
	cur.Addr = c.BucketAddr(hash1(key) & c.mask)
}

// CheckStep probes the bucket at the cursor (whose line the runtime has
// already charged/prefetched). On a first-bucket miss it stages the
// second candidate and returns done=false — the check_failure →
// hash_2 → check_2 path of Listing 1. After the second probe done is
// true and cur.Ok/cur.Idx carry the result.
func (c *Cuckoo) CheckStep(cur *model.Cursor) (done bool) {
	key := cur.Aux[0]
	b := (cur.Addr - c.region.Base) / sim.LineBytes
	bkt := &c.buckets[b&c.mask]
	for s := 0; s < slotsPerBucket; s++ {
		if bkt.used[s] && bkt.keys[s] == key {
			cur.Ok = true
			cur.Idx = bkt.vals[s]
			return true
		}
	}
	if cur.Stage == 1 {
		cur.Stage = 2
		cur.Addr = c.BucketAddr(hash2(key) & c.mask)
		return false
	}
	cur.Ok = false
	cur.Idx = -1
	return true
}
