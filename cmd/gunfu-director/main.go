// Command gunfu-director runs the GuNFu control plane: it accepts
// runtime-agent connections (see gunfu-worker), deploys a network
// function to every agent, and prints the per-agent and aggregate
// results.
//
// Usage:
//
//	gunfu-director -listen 127.0.0.1:7700 -agents 4 \
//	    -nf sfc -sfc-length 6 -flows 32768 -packets 200000 -tasks 16
//
// With -stats-every the agents stream windowed telemetry heartbeats
// while they run, rendered as a per-agent table; -live redraws it in
// place (ANSI), otherwise each refresh appends below the last.
//
// The -slo-* flags attach a per-window SLO watcher to the heartbeat
// stream. When an agent's window breaches the SLO (too much stall, too
// little throughput, too high a p99 — the latter needs -latency), the
// director flips that agent unhealthy and asks it for a flight-recorder
// dump: the worker writes the moments before the breach as a
// Perfetto-loadable trace and reports the file path back.
//
// Robustness controls: -deploy-retries resends a timed-out deploy
// (agents dedupe replays by sequence ID, so a retry never re-runs a
// deployment), -liveness-window/-liveness-missed flag agents that go
// silent, and -chaos wraps every agent connection in the deterministic
// faultnet injector — the interactive way to watch reconnect, retry,
// and liveness ride out connection resets (workers should run with
// -reconnect; see `make chaos-demo`).
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/gunfu-nfv/gunfu/internal/director"
	"github.com/gunfu-nfv/gunfu/internal/faultnet"
)

func main() {
	os.Exit(run())
}

func run() int {
	listen := flag.String("listen", "127.0.0.1:7700", "address to accept agents on")
	agents := flag.Int("agents", 1, "number of agents to wait for")
	nf := flag.String("nf", "nat", "deployable NF: nat, upf-downlink, sfc")
	flows := flag.Int("flows", 65536, "flow/session population per agent")
	packets := flag.Uint64("packets", 100000, "measured packets per agent")
	warmup := flag.Uint64("warmup", 10000, "warmup packets per agent")
	packetBytes := flag.Int("packet-bytes", 64, "workload packet size")
	tasks := flag.Int("tasks", 16, "interleaved NFTasks (0 = RTC baseline)")
	sfcLength := flag.Int("sfc-length", 4, "chain length for -nf sfc")
	pdrs := flag.Int("pdrs", 16, "PDRs per session for -nf upf-downlink")
	seed := flag.Int64("seed", 42, "workload seed")
	wait := flag.Duration("wait", 30*time.Second, "agent registration timeout")
	deployTO := flag.Duration("deploy-timeout", 10*time.Minute, "per-deployment timeout")
	statsEvery := flag.Uint64("stats-every", 0, "stream a telemetry heartbeat every N packets (0 = off)")
	live := flag.Bool("live", false, "redraw the telemetry table in place (implies -stats-every)")
	latency := flag.Bool("latency", false, "collect rx→done latency histograms with each heartbeat (implies -stats-every)")
	sloMaxStall := flag.Float64("slo-max-stall", 0, "SLO: max tolerable per-window stall fraction (0 = unchecked)")
	sloMinMpps := flag.Float64("slo-min-mpps", 0, "SLO: min tolerable per-window throughput in Mpps (0 = unchecked)")
	sloMaxP99 := flag.Uint64("slo-max-p99-cycles", 0, "SLO: max tolerable per-window p99 rx→done latency in cycles, needs -latency (0 = unchecked)")
	retries := flag.Int("deploy-retries", 0, "times a timed-out deploy is resent before giving up (agents dedupe replays)")
	livenessWindow := flag.Duration("liveness-window", 0, "heartbeat liveness window; an agent silent for -liveness-missed windows is flagged dead (0 = off)")
	livenessMissed := flag.Int("liveness-missed", 3, "windows without a message before an agent is flagged dead")
	chaos := flag.Bool("chaos", false, "inject deterministic faults on every agent connection (mid-frame resets, shredded writes) to drill reconnect and retry")
	chaosSeed := flag.Int64("chaos-seed", 1, "fault script seed for -chaos; same seed, same faults")
	flag.Parse()

	slo := director.SLO{
		MaxStallFraction:    *sloMaxStall,
		MinMpps:             *sloMinMpps,
		MaxP99LatencyCycles: *sloMaxP99,
	}
	sloActive := slo != (director.SLO{})
	if *sloMaxP99 > 0 && !*latency {
		fmt.Fprintln(os.Stderr, "gunfu-director: -slo-max-p99-cycles needs -latency; enabling it")
		*latency = true
	}
	if (*live || *latency || sloActive) && *statsEvery == 0 {
		*statsEvery = *packets / 20
		if *statsEvery == 0 {
			*statsEvery = 1
		}
	}

	d := director.New()
	d.Retries = *retries
	var addr string
	if *chaos {
		inj, err := faultnet.New(faultnet.Config{
			Seed:          *chaosSeed,
			CutProb:       0.7,
			CutAfterMin:   2048, // past the register+deploy handshake,
			CutAfterMax:   8192, // within a few telemetry windows
			MaxWriteChunk: 13,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "gunfu-director: %v\n", err)
			return 1
		}
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gunfu-director: %v\n", err)
			return 1
		}
		d.ListenOn(inj.WrapListener(ln))
		addr = ln.Addr().String()
		defer func() {
			st := inj.Stats()
			fmt.Fprintf(os.Stderr, "chaos: seed %d injected %d cuts and %d split writes across %d connections\n",
				*chaosSeed, st.Cuts, st.SplitWrites, st.Conns)
		}()
		fmt.Fprintf(os.Stderr, "chaos: faulting every agent connection (seed %d) — workers should run with -reconnect\n", *chaosSeed)
	} else {
		var err error
		addr, err = d.Listen(*listen)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gunfu-director: %v\n", err)
			return 1
		}
	}
	defer d.Close()

	var mon *director.Monitor
	if *statsEvery > 0 {
		mon = director.NewMonitor()
		var watcher *director.Watcher
		if sloActive {
			watcher = director.NewWatcher(slo)
			watcher.OnBreach = func(b director.Breach) {
				fmt.Fprintf(os.Stderr, "SLO BREACH %s window %d: %s — requesting flight dump\n",
					b.Agent, b.Window, strings.Join(b.Reasons, "; "))
				if err := d.RequestFlightDump(b.Agent); err != nil {
					fmt.Fprintf(os.Stderr, "gunfu-director: %v\n", err)
				}
			}
			d.SetDumpHandler(func(info director.DumpInfo) {
				if info.Error != "" {
					fmt.Fprintf(os.Stderr, "flight dump from %s failed: %s\n", info.Agent, info.Error)
					return
				}
				fmt.Fprintf(os.Stderr, "flight dump from %s: %s (%d events) — open in ui.perfetto.dev\n",
					info.Agent, info.Path, info.Events)
			})
		}
		var mu sync.Mutex
		d.SetStatsHandler(func(r director.StatsReport) {
			mu.Lock()
			defer mu.Unlock()
			mon.Observe(r)
			if watcher != nil {
				watcher.Observe(r)
			}
			if *live {
				// Home the cursor and clear below before redrawing.
				fmt.Print("\033[H\033[2J")
			}
			_ = mon.Table().Render(os.Stdout)
		})
	}

	if *livenessWindow > 0 {
		d.SetLivenessHandler(func(agent string, live bool) {
			if mon != nil {
				mon.SetLive(agent, live)
			}
			if live {
				fmt.Fprintf(os.Stderr, "liveness: agent %s is back\n", agent)
			} else {
				fmt.Fprintf(os.Stderr, "liveness: agent %s silent for %d windows — marked DEAD\n", agent, *livenessMissed)
			}
		})
		if err := d.EnableLiveness(*livenessWindow, *livenessMissed); err != nil {
			fmt.Fprintf(os.Stderr, "gunfu-director: %v\n", err)
			return 1
		}
	}

	fmt.Printf("director listening on %s; waiting for %d agent(s)\n", addr, *agents)
	if err := d.WaitAgents(*agents, *wait); err != nil {
		fmt.Fprintf(os.Stderr, "gunfu-director: %v\n", err)
		return 1
	}

	depl := director.DeploySpec{
		NF:          *nf,
		Flows:       *flows,
		Packets:     *packets,
		Warmup:      *warmup,
		PacketBytes: *packetBytes,
		Tasks:       *tasks,
		Seed:        *seed,
		SFCLength:   *sfcLength,
		PDRs:        *pdrs,
		StatsEvery:  *statsEvery,
		Latency:     *latency,
	}
	fmt.Printf("deploying %s to %d agent(s): flows=%d packets=%d tasks=%d\n",
		depl.NF, *agents, depl.Flows, depl.Packets, depl.Tasks)

	results, err := d.DeployAll(depl, *deployTO)
	var dae *director.DeployAllError
	if err != nil && !errors.As(err, &dae) {
		fmt.Fprintf(os.Stderr, "gunfu-director: %v\n", err)
		return 1
	}
	if dae != nil {
		// Graceful degradation: the healthy agents' results still print
		// below; each failure is attributed here.
		failed := make([]string, 0, len(dae.Errors))
		for name := range dae.Errors {
			failed = append(failed, name)
		}
		sort.Strings(failed)
		for _, name := range failed {
			fmt.Fprintf(os.Stderr, "gunfu-director: %v\n", dae.Errors[name])
		}
		fmt.Fprintf(os.Stderr, "gunfu-director: %d of %d agent(s) failed; reporting the rest\n",
			len(failed), len(failed)+len(results))
	}
	var total float64
	for _, r := range results {
		fmt.Printf("  %-12s %10d pkts  %8.2f Gbps  ipc=%.2f l1=%.1f%%\n",
			r.Agent, r.Packets, r.Gbps(), r.Counters.IPC(), 100*r.Counters.L1HitRate())
		total += r.Gbps()
	}
	fmt.Printf("aggregate: %.2f Gbps across %d agent(s)\n", total, len(results))
	if *latency && mon != nil {
		cl := mon.ClusterLatency()
		if cl.Count() > 0 {
			fmt.Printf("cluster rx→done latency (cycles): p50=%d p95=%d p99=%d p99.9=%d max=%d over %d packets\n",
				cl.Quantile(0.50), cl.Quantile(0.95), cl.Quantile(0.99), cl.Quantile(0.999), cl.Max(), cl.Count())
		}
	}
	if dae != nil {
		return 1
	}
	return 0
}
