// Command gunfu-director runs the GuNFu control plane: it accepts
// runtime-agent connections (see gunfu-worker), deploys a network
// function to every agent, and prints the per-agent and aggregate
// results.
//
// Usage:
//
//	gunfu-director -listen 127.0.0.1:7700 -agents 4 \
//	    -nf sfc -sfc-length 6 -flows 32768 -packets 200000 -tasks 16
//
// With -stats-every the agents stream windowed telemetry heartbeats
// while they run, rendered as a per-agent table; -live redraws it in
// place (ANSI), otherwise each refresh appends below the last.
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"github.com/gunfu-nfv/gunfu/internal/director"
)

func main() {
	os.Exit(run())
}

func run() int {
	listen := flag.String("listen", "127.0.0.1:7700", "address to accept agents on")
	agents := flag.Int("agents", 1, "number of agents to wait for")
	nf := flag.String("nf", "nat", "deployable NF: nat, upf-downlink, sfc")
	flows := flag.Int("flows", 65536, "flow/session population per agent")
	packets := flag.Uint64("packets", 100000, "measured packets per agent")
	warmup := flag.Uint64("warmup", 10000, "warmup packets per agent")
	packetBytes := flag.Int("packet-bytes", 64, "workload packet size")
	tasks := flag.Int("tasks", 16, "interleaved NFTasks (0 = RTC baseline)")
	sfcLength := flag.Int("sfc-length", 4, "chain length for -nf sfc")
	pdrs := flag.Int("pdrs", 16, "PDRs per session for -nf upf-downlink")
	seed := flag.Int64("seed", 42, "workload seed")
	wait := flag.Duration("wait", 30*time.Second, "agent registration timeout")
	deployTO := flag.Duration("deploy-timeout", 10*time.Minute, "per-deployment timeout")
	statsEvery := flag.Uint64("stats-every", 0, "stream a telemetry heartbeat every N packets (0 = off)")
	live := flag.Bool("live", false, "redraw the telemetry table in place (implies -stats-every)")
	flag.Parse()

	if *live && *statsEvery == 0 {
		*statsEvery = *packets / 20
		if *statsEvery == 0 {
			*statsEvery = 1
		}
	}

	d := director.New()
	addr, err := d.Listen(*listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gunfu-director: %v\n", err)
		return 1
	}
	defer d.Close()

	if *statsEvery > 0 {
		mon := director.NewMonitor()
		var mu sync.Mutex
		d.SetStatsHandler(func(r director.StatsReport) {
			mu.Lock()
			defer mu.Unlock()
			mon.Observe(r)
			if *live {
				// Home the cursor and clear below before redrawing.
				fmt.Print("\033[H\033[2J")
			}
			_ = mon.Table().Render(os.Stdout)
		})
	}

	fmt.Printf("director listening on %s; waiting for %d agent(s)\n", addr, *agents)
	if err := d.WaitAgents(*agents, *wait); err != nil {
		fmt.Fprintf(os.Stderr, "gunfu-director: %v\n", err)
		return 1
	}

	depl := director.DeploySpec{
		NF:          *nf,
		Flows:       *flows,
		Packets:     *packets,
		Warmup:      *warmup,
		PacketBytes: *packetBytes,
		Tasks:       *tasks,
		Seed:        *seed,
		SFCLength:   *sfcLength,
		PDRs:        *pdrs,
		StatsEvery:  *statsEvery,
	}
	fmt.Printf("deploying %s to %d agent(s): flows=%d packets=%d tasks=%d\n",
		depl.NF, *agents, depl.Flows, depl.Packets, depl.Tasks)

	results, err := d.DeployAll(depl, *deployTO)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gunfu-director: %v\n", err)
		return 1
	}
	var total float64
	for _, r := range results {
		fmt.Printf("  %-12s %10d pkts  %8.2f Gbps  ipc=%.2f l1=%.1f%%\n",
			r.Agent, r.Packets, r.Gbps(), r.Counters.IPC(), 100*r.Counters.L1HitRate())
		total += r.Gbps()
	}
	fmt.Printf("aggregate: %.2f Gbps across %d agent(s)\n", total, len(results))
	return 0
}
