// Command nfc is the NF-C front end: it parses an NF-C implementation
// library, type-checks it against a state schema, and dumps each
// action's extracted read/write sets and emitted events — the deep
// visibility the GuNFu compiler and runtime consume.
//
// Usage:
//
//	nfc -schema 'PerFlowState=ip,port' path/to/actions.nfc
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/gunfu-nfv/gunfu/internal/nfc"
)

func main() {
	os.Exit(run())
}

func run() int {
	schemaFlag := flag.String("schema", "", "state schema: Root=field,field;Root=... (roots: PerFlowState, SubFlowState, ControlState, TempState)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: nfc [-schema ...] <file.nfc>")
		return 2
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "nfc: %v\n", err)
		return 1
	}
	schema, err := parseSchema(*schemaFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nfc: %v\n", err)
		return 2
	}
	actions, err := nfc.Parse(string(src))
	if err != nil {
		fmt.Fprintf(os.Stderr, "nfc: %v\n", err)
		return 1
	}
	for _, ast := range actions {
		compiled, err := nfc.Compile(ast, schema)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nfc: %v\n", err)
			return 1
		}
		fmt.Printf("NFAction %s (cost≈%d insts, %d temp slots)\n",
			compiled.Name, compiled.Cost, compiled.NumLocals)
		dumpSet("reads", compiled.Reads)
		dumpSet("writes", compiled.Writes)
		fmt.Printf("  emits:  %s\n", strings.Join(compiled.Events, ", "))
	}
	return 0
}

func dumpSet(label string, set map[nfc.Root][]string) {
	if len(set) == 0 {
		fmt.Printf("  %s: (none)\n", label)
		return
	}
	var parts []string
	for _, root := range []nfc.Root{nfc.RootPacket, nfc.RootPerFlow, nfc.RootSubFlow, nfc.RootControl, nfc.RootTemp} {
		if fields, ok := set[root]; ok {
			parts = append(parts, fmt.Sprintf("%s{%s}", root, strings.Join(fields, ",")))
		}
	}
	fmt.Printf("  %s: %s\n", label, strings.Join(parts, " "))
}

func parseSchema(s string) (nfc.Schema, error) {
	schema := nfc.Schema{}
	if s == "" {
		return schema, nil
	}
	for _, part := range strings.Split(s, ";") {
		eq := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(eq) != 2 {
			return nil, fmt.Errorf("bad schema entry %q", part)
		}
		var root nfc.Root
		switch eq[0] {
		case "PerFlowState":
			root = nfc.RootPerFlow
		case "SubFlowState":
			root = nfc.RootSubFlow
		case "ControlState":
			root = nfc.RootControl
		case "TempState":
			root = nfc.RootTemp
		default:
			return nil, fmt.Errorf("unknown schema root %q", eq[0])
		}
		var fields []string
		for _, f := range strings.Split(eq[1], ",") {
			if f = strings.TrimSpace(f); f != "" {
				fields = append(fields, f)
			}
		}
		schema[root] = fields
	}
	return schema, nil
}
