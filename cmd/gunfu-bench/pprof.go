package main

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// startCPUProfile begins a pprof CPU profile to path ("" = disabled)
// and returns the function that stops it and closes the file. Callers
// place the start/stop pair around the window they want measured: in
// profile mode that is the observed packet window only — warmup stays
// out of the profile, exactly as it stays out of the trace.
func startCPUProfile(path string) (stop func() error, err error) {
	if path == "" {
		return func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("cpu profile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		if err := f.Close(); err != nil {
			return fmt.Errorf("cpu profile: %w", err)
		}
		fmt.Fprintf(os.Stderr, "gunfu-bench: wrote cpu profile to %s\n", path)
		return nil
	}, nil
}

// writeHeapProfile dumps an allocation profile to path ("" = disabled),
// forcing a GC first so the live-heap numbers reflect retained state
// rather than collectable garbage.
func writeHeapProfile(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("heap profile: %w", err)
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("heap profile: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("heap profile: %w", err)
	}
	fmt.Fprintf(os.Stderr, "gunfu-bench: wrote heap profile to %s\n", path)
	return nil
}
