// Command gunfu-bench regenerates the paper's evaluation: one
// experiment per figure (fig2, fig3, fig9–fig15) plus the ablation
// studies, printed as text tables.
//
// Usage:
//
//	gunfu-bench -exp all            # every figure, full populations
//	gunfu-bench -exp fig11,fig13    # selected figures
//	gunfu-bench -exp fig10 -quick   # reduced populations for a fast run
//	gunfu-bench -exp all -parallel 8  # figures + sweep points on 8 workers
//
// Profile mode observes a single NF run instead of regenerating
// figures. -trace writes a Chrome trace-event JSON (load it in
// ui.perfetto.dev: one track per interleaved NFTask slot, stalls
// nested in action slices, prefetch fills on their own tracks); -attr
// prints per-NFAction / per-NFState attribution tables and per-packet
// latency quantiles. Warmup runs untraced; only the measured window is
// observed.
//
//	gunfu-bench -trace trace.json -nf nat -flows 32768 -tasks 16
//	gunfu-bench -attr -nf sfc -sfc-length 4 -flows 8192 -tasks 16
//
// -cpuprofile/-memprofile write host pprof profiles (go tool pprof).
// In profile mode the CPU profile covers only the measured window —
// warmup is excluded, matching the trace; in figure mode it covers the
// whole run. The heap profile is written after the run either way.
//
//	gunfu-bench -attr -nf nat -warmup 20000 -packets 200000 \
//	    -cpuprofile cpu.pprof -memprofile mem.pprof
//
// Tables are byte-identical for any -parallel value: sweep points are
// share-nothing simulations, rows are emitted in sweep order, and
// concurrently-run figures render into buffers flushed in selection
// order — parallelism only changes host wall-clock time. Progress and
// timing lines go to stderr; stdout carries only the experiment
// headers and tables.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	gunfu "github.com/gunfu-nfv/gunfu"
	"github.com/gunfu-nfv/gunfu/internal/director"
)

func main() {
	os.Exit(run())
}

func run() int {
	expFlag := flag.String("exp", "all", "comma-separated experiment ids, or \"all\"")
	quick := flag.Bool("quick", false, "reduced populations and windows")
	seed := flag.Int64("seed", 42, "workload seed")
	parallel := flag.Int("parallel", 1, "concurrent sweep points per experiment (<=1 = sequential)")
	list := flag.Bool("list", false, "list experiment ids and exit")

	// Profile mode.
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON of one observed run to this path")
	attr := flag.Bool("attr", false, "print per-NFAction/per-NFState attribution and latency quantiles for one observed run")
	nfName := flag.String("nf", "nat", "profile mode: NF to run (a deployable registry name)")
	flows := flag.Int("flows", 32768, "profile mode: concurrent flow population")
	packets := flag.Uint64("packets", 20000, "profile mode: measured window (packets)")
	warmup := flag.Uint64("warmup", 5000, "profile mode: untraced warmup packets")
	packetBytes := flag.Int("packet-bytes", 64, "profile mode: workload packet size")
	tasks := flag.Int("tasks", 16, "profile mode: max interleaved NFTasks (0 = RTC baseline)")
	sfcLength := flag.Int("sfc-length", 0, "profile mode: chain length for -nf sfc")
	pdrs := flag.Int("pdrs", 0, "profile mode: rules per session for -nf upf-downlink")

	// Host profiling (both modes). In profile mode the CPU profile covers
	// only the measured window — warmup is excluded, like the trace; in
	// figure mode it covers the whole experiment run.
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this path")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this path after the run")
	flag.Parse()

	if *tracePath != "" || *attr {
		p := profileSpec{
			tracePath:  *tracePath,
			attr:       *attr,
			cpuProfile: *cpuProfile,
			memProfile: *memProfile,
			spec: director.DeploySpec{
				NF: *nfName, Flows: *flows, Packets: *packets, Warmup: *warmup,
				PacketBytes: *packetBytes, Tasks: *tasks, Seed: *seed,
				SFCLength: *sfcLength, PDRs: *pdrs,
			},
		}
		if err := profile(p, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "gunfu-bench: %v\n", err)
			return 1
		}
		return 0
	}

	if *list {
		for _, n := range gunfu.ExperimentNames() {
			fmt.Println(n)
		}
		return 0
	}

	var names []string
	if *expFlag == "all" {
		names = gunfu.ExperimentNames()
	} else {
		for _, n := range strings.Split(*expFlag, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	}
	if len(names) == 0 {
		fmt.Fprintln(os.Stderr, "gunfu-bench: no experiments selected")
		return 2
	}

	// Figure mode profiles wrap the whole run (there is no warmup to
	// exclude — every sweep point is the workload).
	stopCPU, err := startCPUProfile(*cpuProfile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gunfu-bench: %v\n", err)
		return 1
	}
	finishProfiles := func() int {
		if err := stopCPU(); err != nil {
			fmt.Fprintf(os.Stderr, "gunfu-bench: %v\n", err)
			return 1
		}
		if err := writeHeapProfile(*memProfile); err != nil {
			fmt.Fprintf(os.Stderr, "gunfu-bench: %v\n", err)
			return 1
		}
		return 0
	}

	if *parallel <= 1 {
		opts := gunfu.ExpOptions{Quick: *quick, Seed: *seed, Out: os.Stdout}
		for _, name := range names {
			start := time.Now()
			fmt.Printf("== %s ==\n", name)
			if _, err := gunfu.RunExperiment(name, opts); err != nil {
				fmt.Fprintf(os.Stderr, "gunfu-bench: %v\n", err)
				return 1
			}
			fmt.Println()
			fmt.Fprintf(os.Stderr, "gunfu-bench: %s completed in %.1fs\n", name, time.Since(start).Seconds())
		}
		return finishProfiles()
	}

	// Parallel mode: figures run concurrently (each additionally fanning
	// its sweep points out over up to -parallel workers), rendering into
	// per-figure buffers that are flushed to stdout in selection order —
	// so stdout is byte-identical to the sequential run.
	bufs := make([]bytes.Buffer, len(names))
	errs := make([]error, len(names))
	done := make([]chan struct{}, len(names))
	for i := range done {
		done[i] = make(chan struct{})
	}
	sem := make(chan struct{}, *parallel)
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			defer close(done[i])
			sem <- struct{}{}
			defer func() { <-sem }()
			start := time.Now()
			fmt.Fprintf(&bufs[i], "== %s ==\n", name)
			opts := gunfu.ExpOptions{Quick: *quick, Seed: *seed, Out: &bufs[i], Parallel: *parallel}
			if _, err := gunfu.RunExperiment(name, opts); err != nil {
				errs[i] = err
				return
			}
			fmt.Fprintln(&bufs[i])
			fmt.Fprintf(os.Stderr, "gunfu-bench: %s completed in %.1fs\n", name, time.Since(start).Seconds())
		}(i, name)
	}
	for i := range names {
		<-done[i]
		if errs[i] != nil {
			fmt.Fprintf(os.Stderr, "gunfu-bench: %v\n", errs[i])
			wg.Wait()
			return 1
		}
		os.Stdout.Write(bufs[i].Bytes())
	}
	wg.Wait()
	return finishProfiles()
}
