// Command gunfu-bench regenerates the paper's evaluation: one
// experiment per figure (fig2, fig3, fig9–fig15) plus the ablation
// studies, printed as text tables.
//
// Usage:
//
//	gunfu-bench -exp all            # every figure, full populations
//	gunfu-bench -exp fig11,fig13    # selected figures
//	gunfu-bench -exp fig10 -quick   # reduced populations for a fast run
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	gunfu "github.com/gunfu-nfv/gunfu"
)

func main() {
	os.Exit(run())
}

func run() int {
	expFlag := flag.String("exp", "all", "comma-separated experiment ids, or \"all\"")
	quick := flag.Bool("quick", false, "reduced populations and windows")
	seed := flag.Int64("seed", 42, "workload seed")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, n := range gunfu.ExperimentNames() {
			fmt.Println(n)
		}
		return 0
	}

	var names []string
	if *expFlag == "all" {
		names = gunfu.ExperimentNames()
	} else {
		for _, n := range strings.Split(*expFlag, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	}
	if len(names) == 0 {
		fmt.Fprintln(os.Stderr, "gunfu-bench: no experiments selected")
		return 2
	}

	opts := gunfu.ExpOptions{Quick: *quick, Seed: *seed, Out: os.Stdout}
	for _, name := range names {
		start := time.Now()
		fmt.Printf("== %s ==\n", name)
		if _, err := gunfu.RunExperiment(name, opts); err != nil {
			fmt.Fprintf(os.Stderr, "gunfu-bench: %v\n", err)
			return 1
		}
		fmt.Printf("(%s completed in %.1fs)\n\n", name, time.Since(start).Seconds())
	}
	return 0
}
