package main

import (
	"fmt"
	"io"
	"os"

	"github.com/gunfu-nfv/gunfu/internal/director"
	"github.com/gunfu-nfv/gunfu/internal/mem"
	"github.com/gunfu-nfv/gunfu/internal/obs"
	"github.com/gunfu-nfv/gunfu/internal/rt"
	"github.com/gunfu-nfv/gunfu/internal/rtc"
	"github.com/gunfu-nfv/gunfu/internal/sim"
)

// profileSpec selects the workload for a -trace/-attr profile run. It
// reuses the deployable registry so the profiled NFs are exactly the
// control plane's.
type profileSpec struct {
	tracePath  string // Chrome trace JSON output ("" = off)
	attr       bool   // print attribution tables
	cpuProfile string // pprof CPU profile of the measured window ("" = off)
	memProfile string // pprof heap profile after the window ("" = off)
	spec       director.DeploySpec
}

// profile executes one observed run: warmup untraced, then the
// measured window with the requested tracers attached. The attribution
// tables go to out; the Chrome trace to tracePath.
func profile(p profileSpec, out io.Writer) error {
	factory, ok := director.DefaultRegistry()[p.spec.NF]
	if !ok {
		return fmt.Errorf("unknown NF %q", p.spec.NF)
	}
	if err := p.spec.Validate(); err != nil {
		return err
	}
	as := mem.NewAddressSpace()
	prog, src, err := factory(as, p.spec)
	if err != nil {
		return err
	}
	cfg := sim.DefaultConfig()
	core, err := sim.NewCore(cfg)
	if err != nil {
		return err
	}
	var run func(n uint64) (rt.Result, error)
	if p.spec.Tasks > 0 {
		rcfg := rt.DefaultConfig()
		rcfg.Tasks = p.spec.Tasks
		w, err := rt.NewWorker(core, as, prog, rcfg)
		if err != nil {
			return err
		}
		run = func(n uint64) (rt.Result, error) { return w.Run(src, n) }
	} else {
		w, err := rtc.NewWorker(core, as, prog, rtc.DefaultConfig())
		if err != nil {
			return err
		}
		run = func(n uint64) (rt.Result, error) { return w.Run(src, n) }
	}

	if p.spec.Warmup > 0 {
		if _, err := run(p.spec.Warmup); err != nil {
			return err
		}
	}

	// Attach observation only for the measured window, so warmup noise
	// (cold caches, first-touch misses) stays out of the profile. The
	// host pprof window matches: started here, stopped right after the
	// measured packets, before any report rendering.
	stopCPU, err := startCPUProfile(p.cpuProfile)
	if err != nil {
		return err
	}
	var col *obs.Collector
	var tw *obs.TraceWriter
	var tracers []sim.Tracer
	if p.attr {
		col = obs.NewCollector(prog, cfg.FreqHz)
		tracers = append(tracers, col)
	}
	if p.tracePath != "" {
		tw = obs.NewTraceWriter(prog, cfg.FreqHz)
		tracers = append(tracers, tw)
	}
	// Append only live tracers: a typed-nil *Collector or *TraceWriter
	// boxed into sim.Tracer is a non-nil interface, which Multi would
	// keep and then segfault on.
	core.SetTracer(obs.Multi(tracers...))
	res, err := run(p.spec.Packets)
	if err != nil {
		stopCPU()
		return err
	}
	core.SetTracer(nil)
	if err := stopCPU(); err != nil {
		return err
	}
	if err := writeHeapProfile(p.memProfile); err != nil {
		return err
	}

	fmt.Fprintf(out, "profiled %s: %d packets, %.2f Gbps, %s\n\n",
		p.spec.NF, res.Packets, res.Gbps(), res.Counters.String())
	if col != nil {
		for _, t := range col.Tables() {
			if err := t.Render(out); err != nil {
				return err
			}
		}
	}
	if tw != nil {
		f, err := os.Create(p.tracePath)
		if err != nil {
			return err
		}
		if err := tw.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %d trace events to %s (open in ui.perfetto.dev)\n", tw.Len(), p.tracePath)
	}
	return nil
}
