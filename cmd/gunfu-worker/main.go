// Command gunfu-worker is the GuNFu runtime agent: it connects to a
// director, registers, and executes NF deployments on a local
// simulated core, reporting measurements back.
//
// Usage:
//
//	gunfu-worker -connect 127.0.0.1:7700 -name worker-1 -metrics 127.0.0.1:8080
//
// With -metrics the agent serves its observability plane on one HTTP
// address:
//
//	/metrics       OpenMetrics/Prometheus text exposition: cumulative
//	               volume counters, the raw PMU block, last-window
//	               derived rates, rx→done latency quantiles, and Go
//	               runtime gauges.
//	/debug/vars    expvar JSON; the "gunfu" map is a read-only snapshot
//	               of the same registry (no second set of fields).
//	/debug/flight  the newest flight-recorder dump as Perfetto-loadable
//	               trace JSON (404 until a dump has been taken).
//	/debug/pprof   Go's standard profiling endpoints.
//
// -expvar is a deprecated alias for -metrics.
package main

import (
	"expvar"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strconv"
	"sync"

	"github.com/gunfu-nfv/gunfu/internal/director"
	"github.com/gunfu-nfv/gunfu/internal/obs"
)

func main() {
	os.Exit(run())
}

func run() int {
	connect := flag.String("connect", "127.0.0.1:7700", "director address")
	name := flag.String("name", "", "agent name (required)")
	metricsAddr := flag.String("metrics", "", "serve /metrics, /debug/vars, /debug/flight and /debug/pprof on this HTTP address (e.g. 127.0.0.1:8080)")
	expvarAddr := flag.String("expvar", "", "deprecated alias for -metrics")
	flightEvents := flag.Int("flight-events", director.DefaultFlightEvents, "flight-recorder ring capacity in events (0 disables)")
	dumpDir := flag.String("dump-dir", "", "directory for flight dumps (default: system temp dir)")
	flag.Parse()

	if *name == "" {
		fmt.Fprintln(os.Stderr, "gunfu-worker: -name is required")
		return 2
	}
	if *metricsAddr == "" {
		*metricsAddr = *expvarAddr
	}
	a, err := director.NewAgent(*name, director.DefaultRegistry())
	if err != nil {
		fmt.Fprintf(os.Stderr, "gunfu-worker: %v\n", err)
		return 1
	}
	a.FlightEvents = *flightEvents
	a.DumpDir = *dumpDir

	if *metricsAddr != "" {
		serveMetrics(a, *metricsAddr)
	}
	fmt.Printf("agent %s connecting to %s\n", *name, *connect)
	if err := a.Run(*connect); err != nil {
		fmt.Fprintf(os.Stderr, "gunfu-worker: %v\n", err)
		return 1
	}
	fmt.Printf("agent %s shut down\n", *name)
	return 0
}

// serveMetrics wires the agent's observability plane onto one HTTP
// server. Every metric is defined once, in the registry the
// MetricsBridge populates; expvar republishes a snapshot of it rather
// than maintaining parallel fields.
func serveMetrics(a *director.Agent, addr string) {
	reg := obs.NewRegistry()
	reg.AddGoRuntime()
	bridge := director.NewMetricsBridge(reg)
	a.OnStats = bridge.Observe

	// expvar's /debug/vars is registered on the default mux at init;
	// "gunfu" exposes the registry read-only.
	expvar.Publish("gunfu", expvar.Func(func() any {
		return reg.Snapshot()
	}))

	var mu sync.Mutex
	var lastInfo director.DumpInfo
	var lastDump []byte
	a.OnDump = func(info director.DumpInfo, trace []byte) {
		mu.Lock()
		lastInfo = info
		lastDump = append(lastDump[:0], trace...)
		mu.Unlock()
	}

	http.Handle("/metrics", reg)
	http.HandleFunc("/debug/flight", func(w http.ResponseWriter, _ *http.Request) {
		mu.Lock()
		info := lastInfo
		dump := append([]byte(nil), lastDump...)
		mu.Unlock()
		if len(dump) == 0 {
			http.Error(w, "no flight dump taken yet (the director requests one on SLO breach)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Gunfu-Flight-Events", strconv.Itoa(info.Events))
		_, _ = w.Write(dump)
	})
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			fmt.Fprintf(os.Stderr, "gunfu-worker: metrics: %v\n", err)
		}
	}()
	fmt.Printf("agent serving metrics on http://%s/metrics (pprof, expvar and flight dumps under /debug/)\n", addr)
}
