// Command gunfu-worker is the GuNFu runtime agent: it connects to a
// director, registers, and executes NF deployments on a local
// simulated core, reporting measurements back.
//
// Usage:
//
//	gunfu-worker -connect 127.0.0.1:7700 -name worker-1
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/gunfu-nfv/gunfu/internal/director"
)

func main() {
	os.Exit(run())
}

func run() int {
	connect := flag.String("connect", "127.0.0.1:7700", "director address")
	name := flag.String("name", "", "agent name (required)")
	flag.Parse()

	if *name == "" {
		fmt.Fprintln(os.Stderr, "gunfu-worker: -name is required")
		return 2
	}
	a, err := director.NewAgent(*name, director.DefaultRegistry())
	if err != nil {
		fmt.Fprintf(os.Stderr, "gunfu-worker: %v\n", err)
		return 1
	}
	fmt.Printf("agent %s connecting to %s\n", *name, *connect)
	if err := a.Run(*connect); err != nil {
		fmt.Fprintf(os.Stderr, "gunfu-worker: %v\n", err)
		return 1
	}
	fmt.Printf("agent %s shut down\n", *name)
	return 0
}
