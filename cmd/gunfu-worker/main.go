// Command gunfu-worker is the GuNFu runtime agent: it connects to a
// director, registers, and executes NF deployments on a local
// simulated core, reporting measurements back.
//
// Usage:
//
//	gunfu-worker -connect 127.0.0.1:7700 -name worker-1
//
// With -expvar the agent also serves Go's expvar JSON on
// http://<addr>/debug/vars, publishing the running deployment's
// telemetry (windows seen, packets processed, last window's rates) for
// scraping alongside the director's live view.
package main

import (
	"expvar"
	"flag"
	"fmt"
	"net/http"
	"os"

	"github.com/gunfu-nfv/gunfu/internal/director"
)

func main() {
	os.Exit(run())
}

func run() int {
	connect := flag.String("connect", "127.0.0.1:7700", "director address")
	name := flag.String("name", "", "agent name (required)")
	expvarAddr := flag.String("expvar", "", "serve expvar telemetry on this HTTP address (e.g. 127.0.0.1:8080)")
	flag.Parse()

	if *name == "" {
		fmt.Fprintln(os.Stderr, "gunfu-worker: -name is required")
		return 2
	}
	a, err := director.NewAgent(*name, director.DefaultRegistry())
	if err != nil {
		fmt.Fprintf(os.Stderr, "gunfu-worker: %v\n", err)
		return 1
	}
	if *expvarAddr != "" {
		a.OnStats = publishExpvar()
		go func() {
			// expvar registers /debug/vars on the default mux at init.
			if err := http.ListenAndServe(*expvarAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "gunfu-worker: expvar: %v\n", err)
			}
		}()
		fmt.Printf("agent %s serving expvar on http://%s/debug/vars\n", *name, *expvarAddr)
	}
	fmt.Printf("agent %s connecting to %s\n", *name, *connect)
	if err := a.Run(*connect); err != nil {
		fmt.Fprintf(os.Stderr, "gunfu-worker: %v\n", err)
		return 1
	}
	fmt.Printf("agent %s shut down\n", *name)
	return 0
}

// publishExpvar returns an OnStats hook feeding the process-wide
// expvar variables. Heartbeats arrive on the single agent goroutine,
// so plain expvar setters are enough.
func publishExpvar() func(director.StatsReport) {
	var (
		windows = expvar.NewInt("gunfu.windows")
		packets = expvar.NewInt("gunfu.packets_total")
		nf      = expvar.NewString("gunfu.nf")
		mpps    = expvar.NewFloat("gunfu.last_mpps")
		gbps    = expvar.NewFloat("gunfu.last_gbps")
		ipc     = expvar.NewFloat("gunfu.last_ipc")
		stall   = expvar.NewFloat("gunfu.last_stall_fraction")
	)
	return func(r director.StatsReport) {
		windows.Add(1)
		packets.Add(int64(r.Packets))
		nf.Set(r.NF)
		mpps.Set(r.Mpps())
		gbps.Set(r.Gbps())
		ipc.Set(r.Counters.IPC())
		stall.Set(r.Counters.StallFraction())
	}
}
