// Command gunfu-worker is the GuNFu runtime agent: it connects to a
// director, registers, and executes NF deployments on a local
// simulated core, reporting measurements back.
//
// Usage:
//
//	gunfu-worker -connect 127.0.0.1:7700 -name worker-1 -metrics 127.0.0.1:8080
//
// With -metrics the agent serves its observability plane on one HTTP
// address:
//
//	/metrics       OpenMetrics/Prometheus text exposition: cumulative
//	               volume counters, the raw PMU block, last-window
//	               derived rates, rx→done latency quantiles, and Go
//	               runtime gauges.
//	/debug/vars    expvar JSON; the "gunfu" map is a read-only snapshot
//	               of the same registry (no second set of fields).
//	/debug/flight  the newest flight-recorder dump as Perfetto-loadable
//	               trace JSON (404 until a dump has been taken).
//	/debug/pprof   Go's standard profiling endpoints.
//
// With -reconnect the agent redials a dropped director connection
// under capped jittered exponential backoff (-backoff-min/-backoff-max,
// -backoff-attempts to bound the redials) instead of exiting — the
// production mode, and the partner of `gunfu-director -chaos`.
//
// -expvar is a deprecated alias for -metrics.
package main

import (
	"expvar"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strconv"
	"sync"

	"github.com/gunfu-nfv/gunfu/internal/director"
	"github.com/gunfu-nfv/gunfu/internal/obs"
)

func main() {
	os.Exit(run())
}

func run() int {
	connect := flag.String("connect", "127.0.0.1:7700", "director address")
	name := flag.String("name", "", "agent name (required)")
	metricsAddr := flag.String("metrics", "", "serve /metrics, /debug/vars, /debug/flight and /debug/pprof on this HTTP address (e.g. 127.0.0.1:8080)")
	expvarAddr := flag.String("expvar", "", "deprecated alias for -metrics")
	flightEvents := flag.Int("flight-events", director.DefaultFlightEvents, "flight-recorder ring capacity in events (0 disables)")
	dumpDir := flag.String("dump-dir", "", "directory for flight dumps (default: system temp dir)")
	reconnect := flag.Bool("reconnect", false, "redial the director with capped jittered exponential backoff when the connection drops")
	backoffMin := flag.Duration("backoff-min", director.DefaultBackoff().Min, "initial reconnect delay for -reconnect")
	backoffMax := flag.Duration("backoff-max", director.DefaultBackoff().Max, "reconnect delay cap for -reconnect")
	backoffAttempts := flag.Int("backoff-attempts", 0, "consecutive failed connection attempts before -reconnect gives up (0 = never)")
	flag.Parse()

	if *name == "" {
		fmt.Fprintln(os.Stderr, "gunfu-worker: -name is required")
		return 2
	}
	if *metricsAddr == "" {
		*metricsAddr = *expvarAddr
	}
	a, err := director.NewAgent(*name, director.DefaultRegistry())
	if err != nil {
		fmt.Fprintf(os.Stderr, "gunfu-worker: %v\n", err)
		return 1
	}
	a.FlightEvents = *flightEvents
	a.DumpDir = *dumpDir

	if *metricsAddr != "" {
		serveMetrics(a, *metricsAddr)
	}
	fmt.Printf("agent %s connecting to %s\n", *name, *connect)
	var err2 error
	if *reconnect {
		bo := director.DefaultBackoff()
		bo.Min, bo.Max, bo.Attempts = *backoffMin, *backoffMax, *backoffAttempts
		err2 = a.Serve(*connect, bo)
	} else {
		err2 = a.Run(*connect)
	}
	if err2 != nil {
		fmt.Fprintf(os.Stderr, "gunfu-worker: %v\n", err2)
		return 1
	}
	fmt.Printf("agent %s shut down\n", *name)
	return 0
}

// serveMetrics wires the agent's observability plane onto one HTTP
// server. Every metric is defined once, in the registry the
// MetricsBridge populates; expvar republishes a snapshot of it rather
// than maintaining parallel fields.
func serveMetrics(a *director.Agent, addr string) {
	reg := obs.NewRegistry()
	reg.AddGoRuntime()
	bridge := director.NewMetricsBridge(reg)
	a.OnStats = bridge.Observe

	// expvar's /debug/vars is registered on the default mux at init;
	// "gunfu" exposes the registry read-only.
	expvar.Publish("gunfu", expvar.Func(func() any {
		return reg.Snapshot()
	}))

	var mu sync.Mutex
	var lastInfo director.DumpInfo
	var lastDump []byte
	a.OnDump = func(info director.DumpInfo, trace []byte) {
		mu.Lock()
		lastInfo = info
		lastDump = append(lastDump[:0], trace...)
		mu.Unlock()
	}

	http.Handle("/metrics", reg)
	http.HandleFunc("/debug/flight", func(w http.ResponseWriter, _ *http.Request) {
		mu.Lock()
		info := lastInfo
		dump := append([]byte(nil), lastDump...)
		mu.Unlock()
		if len(dump) == 0 {
			http.Error(w, "no flight dump taken yet (the director requests one on SLO breach)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Gunfu-Flight-Events", strconv.Itoa(info.Events))
		_, _ = w.Write(dump)
	})
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			fmt.Fprintf(os.Stderr, "gunfu-worker: metrics: %v\n", err)
		}
	}()
	fmt.Printf("agent serving metrics on http://%s/metrics (pprof, expvar and flight dumps under /debug/)\n", addr)
}
